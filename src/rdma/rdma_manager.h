// RdmaManager: the intermediate layer between engine code and the verbs
// fabric (paper Sec. X-B), built around a first-class completion handle.
//
// Every verb — READ, WRITE, SEND, FETCH_ADD, CMP_SWAP — is posted through
// a VerbQueue and returns a WrHandle. Handles can be waited individually,
// in doorbell-batched waves (ReadBatch), or harvested out of post order by
// wr_id: a completion that pops before its handle asks is stashed until
// claimed. Synchronous wrappers are post+wait over the same path, so reads,
// writes and atomics interleave freely on one queue pair and any number of
// waves may be live at once — there is no "drain everything before a sync
// verb" or "one live batch per thread" restriction. Dropping or
// Cancel()ing a handle never blocks: the completion is discarded when it
// pops, which makes error unwind safe.
//
// The layer also keeps per-QP in-flight accounting and per-verb-class
// ops/bytes/wire-latency telemetry (RdmaVerbStats), surfaced through
// DbStats and the bench harness.

#ifndef DLSM_RDMA_RDMA_MANAGER_H_
#define DLSM_RDMA_RDMA_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/verb_stats.h"
#include "src/util/status.h"

namespace dlsm {
namespace rdma {

class RdmaManager;
class VerbQueue;

/// One verb posted but not yet completed, as seen by an observer thread
/// (watchdog, diagnostics). A point-in-time copy: by the time the caller
/// inspects it the verb may have completed.
struct OutstandingVerb {
  uint64_t wr_id = 0;
  VerbClass cls = VerbClass::kRead;
  uint64_t post_ns = 0;  ///< Fabric post timestamp (virtual time).
};

/// Completion handle for one posted verb; move-only, obtained from a
/// VerbQueue post. Wait() blocks (in virtual time) until this verb's own
/// completion — other completions popping meanwhile are stashed for their
/// handles, so handles may be waited in any order. Destroying or
/// Cancel()ing a live handle never blocks; the completion is discarded on
/// arrival (the fabric moves payloads at post time, so abandoning a verb
/// cannot corrupt buffers). A handle must not outlive its VerbQueue.
class WrHandle {
 public:
  WrHandle() = default;
  WrHandle(WrHandle&& o) noexcept;
  WrHandle& operator=(WrHandle&& o) noexcept;
  ~WrHandle() { Cancel(); }

  WrHandle(const WrHandle&) = delete;
  WrHandle& operator=(const WrHandle&) = delete;

  /// False for default-constructed, moved-from, or cancelled handles.
  bool valid() const { return vq_ != nullptr || done_; }
  uint64_t wr_id() const { return wr_id_; }

  /// Blocks until this verb completes; returns its status. Idempotent.
  Status Wait();

  /// Nonblocking: true once the completion has arrived (claiming it as a
  /// side effect, so status() becomes valid). Idempotent.
  bool Ready();

  /// Completion status; valid after Wait() or a true Ready().
  const Status& status() const { return status_; }

  /// Wire completion time; valid after Wait() or a true Ready().
  uint64_t completion_ns() const { return completion_ns_; }

  /// Detaches from the completion without blocking: it is dropped when it
  /// pops and this handle becomes invalid. No-op on invalid or already
  /// completed handles.
  void Cancel();

 private:
  friend class VerbQueue;
  WrHandle(VerbQueue* vq, uint64_t wr_id) : vq_(vq), wr_id_(wr_id) {}

  VerbQueue* vq_ = nullptr;
  uint64_t wr_id_ = 0;
  bool done_ = false;
  Status status_;
  uint64_t completion_ns_ = 0;
};

/// Post/harvest state over one queue pair's send side. Tracks every verb
/// posted through it until its completion is claimed by a handle, stashes
/// completions that pop before their handle asks (enabling out-of-post-
/// order harvest by wr_id), drops completions whose handles were
/// cancelled, and feeds per-verb telemetry to the owning manager.
///
/// A VerbQueue is single-owner: either thread-local (RdmaManager::
/// ThreadVq) or used under the caller's own synchronization. Wrap a QP
/// before posting on it and route every send-side post through the queue;
/// receive-side verbs (PostRecv / recv CQ) are independent and untouched.
class VerbQueue {
 public:
  /// mgr may be null (bare-fabric use); then this queue's telemetry is
  /// not aggregated into any manager snapshot.
  explicit VerbQueue(QueuePair* qp, RdmaManager* mgr = nullptr);
  ~VerbQueue();

  VerbQueue(const VerbQueue&) = delete;
  VerbQueue& operator=(const VerbQueue&) = delete;

  QueuePair* qp() const { return qp_; }

  /// Verbs posted through this queue whose completion has not popped yet.
  size_t in_flight() const { return pending_.size(); }

  WrHandle Read(void* dst, uint64_t raddr, uint32_t rkey, size_t len);
  WrHandle Write(const void* src, uint64_t raddr, uint32_t rkey, size_t len);
  /// One-sided write releasing an 8-byte ready stamp at raddr+len last
  /// (see QueuePair::PostWriteStamped / StampFuture).
  WrHandle WriteStamped(const void* src, uint64_t raddr, uint32_t rkey,
                        size_t len);
  WrHandle WriteWithImm(const void* src, uint64_t raddr, uint32_t rkey,
                        size_t len, uint32_t imm);
  WrHandle Send(const void* src, size_t len);
  WrHandle FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                    uint64_t* prev);
  WrHandle CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                   uint64_t desired, uint64_t* prev);

  /// Blocks until every in-flight verb has popped (stashing completions
  /// for live handles, dropping cancelled ones). Returns the first
  /// failure observed among the completions popped by this call. A
  /// teardown / barrier helper; individual waits don't need it.
  Status DrainAll();

  /// Error recovery: after any completion reports a failure this queue's
  /// QP is in the error state and every later post flush-fails. Recover()
  /// drains whatever is still in flight (the flush statuses stash for
  /// their live handles as usual), resets the QP back to ready, and counts
  /// one reconnect. Returns non-OK — and the QP stays errored — while the
  /// peer node is down. Callers re-post their failed work after a
  /// successful Recover(). No-op on a healthy QP.
  Status Recover();

 private:
  friend class WrHandle;
  friend class RdmaManager;

  /// Fire-and-forget users (cancelled handles) never pop their
  /// completions themselves; once this many verbs are pending, a post
  /// first sweeps the CQ so it cannot grow unboundedly. Live waves
  /// smaller than this are never drained early, keeping the
  /// outstanding-op gauges faithful to what is actually in flight.
  static constexpr size_t kAutoSweepThreshold = 32;

  /// One posted-but-unharvested verb. Flat vectors with swap-erase beat
  /// node-based maps here: the sets are wave-sized (tens at most, see
  /// kAutoSweepThreshold) and this bookkeeping is charged as host CPU on
  /// every verb the simulation times.
  struct Pending {
    uint64_t wr_id;
    VerbClass cls;
    bool cancelled;
  };

 public:
  /// Appends every verb still in flight on this queue to *out. Safe from
  /// any thread (reads the stats-side mirror, not the owner's pending_).
  void ListOutstanding(std::vector<OutstandingVerb>* out) const;

 private:
  WrHandle Track(uint64_t wr_id, VerbClass cls);
  /// Accounts one popped completion: telemetry, pending bookkeeping, and
  /// stash-or-drop depending on whether the handle was cancelled.
  void Admit(const Completion& c);
  /// Admits everything already ready on the CQ (nonblocking).
  void Sweep();
  /// Sweep, but only past the auto-sweep threshold (called on posts).
  void MaybeSweep() {
    if (pending_.size() >= kAutoSweepThreshold) Sweep();
  }
  Status WaitFor(uint64_t wr_id, Completion* out);
  bool TryClaim(uint64_t wr_id, Completion* out);
  void Cancel(uint64_t wr_id);

  size_t FindPending(uint64_t wr_id) const;
  void RecordPost(uint64_t wr_id, VerbClass cls, uint64_t post_ns);
  void RecordCompletion(VerbClass cls, const Completion& c);
  void RecordAbandoned();
  void RecordReconnect();
  /// Merges this queue's telemetry into *out (thread-safe vs the owner).
  void SnapshotInto(RdmaVerbStats* out) const;

  QueuePair* qp_;
  RdmaManager* mgr_;
  std::vector<Pending> pending_;
  std::vector<Completion> stash_;

  // Telemetry is queue-local under an uncontended per-queue mutex (the
  // queue is single-owner; only manager snapshots contend), so the
  // per-verb cost is two cheap lock round trips instead of traffic on a
  // shared cache line. outstanding_verbs_ mirrors pending_ under the same
  // mutex so observer threads (the stall watchdog) can enumerate in-flight
  // work without touching the owner-only pending_ vector.
  mutable std::mutex stats_mu_;
  std::vector<OutstandingVerb> outstanding_verbs_;
  VerbClassStats cls_stats_[kNumVerbClasses];
  uint64_t posted_ = 0;
  uint64_t completed_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t max_outstanding_ = 0;
  uint64_t reconnects_ = 0;
};

/// Per-(local node, remote node) RDMA connection manager. Thread-safe;
/// each calling thread transparently gets its own verb queue (and QP).
class RdmaManager {
 public:
  RdmaManager(Fabric* fabric, Node* local, Node* remote);
  ~RdmaManager();

  RdmaManager(const RdmaManager&) = delete;
  RdmaManager& operator=(const RdmaManager&) = delete;

  Fabric* fabric() const { return fabric_; }
  Node* local() const { return local_; }
  Node* remote() const { return remote_; }
  Env* env() const { return fabric_->env(); }

  /// Returns the calling thread's verb queue, creating it (and its queue
  /// pair) on first use (paper: "every thread creates a thread-local
  /// queue pair ... so threads do not collide when polling completions").
  /// Handles from it must be waited on the posting thread.
  VerbQueue* ThreadVq();

  /// Creates a verb queue over a fresh queue pair for a single owner with
  /// long-lived outstanding work (flush pipeline, scan prefetch), so its
  /// in-flight depth never queues behind the owner thread's other verbs.
  std::unique_ptr<VerbQueue> CreateExclusiveVq();

  // Synchronous wrappers: post + wait on the calling thread's verb queue.
  // They interleave freely with outstanding async handles on the same
  // queue — waits harvest by wr_id, not FIFO position.

  /// Synchronous one-sided read; blocks until the wire completion.
  Status Read(void* dst, uint64_t raddr, uint32_t rkey, size_t len);

  /// Synchronous one-sided write; blocks until the wire completion.
  Status Write(const void* src, uint64_t raddr, uint32_t rkey, size_t len);

  /// Synchronous remote fetch-and-add of an 8-byte counter.
  Status FetchAdd(uint64_t raddr, uint32_t rkey, uint64_t add,
                  uint64_t* prev);

  /// Synchronous remote compare-and-swap; *prev receives the old value.
  Status CmpSwap(uint64_t raddr, uint32_t rkey, uint64_t expected,
                 uint64_t desired, uint64_t* prev);

  /// Posts a one-sided READ (WRITE) on the calling thread's verb queue
  /// without waiting. Doorbell batching: post N, then wait the handles.
  WrHandle PostReadAsync(void* dst, uint64_t raddr, uint32_t rkey,
                         size_t len);
  WrHandle PostWriteAsync(const void* src, uint64_t raddr, uint32_t rkey,
                          size_t len);

  /// Snapshot of verb-layer telemetry across all of this manager's
  /// queues (thread-local and exclusive).
  RdmaVerbStats StatsSnapshot() const;

  /// Verbs posted through this manager whose completion has not popped
  /// yet (gauge across all queues).
  uint64_t outstanding_ops() const { return StatsSnapshot().outstanding; }

  /// Appends every in-flight verb across this manager's queues to *out
  /// (point-in-time copy; see OutstandingVerb). Watchdog probes use this
  /// to name verbs outstanding beyond their deadline.
  void ListOutstanding(std::vector<OutstandingVerb>* out) const;

  /// One line per live verb queue — QP error state, in-flight depth, last
  /// post time — for watchdog diagnostic dumps.
  std::string QpStateSummary() const;

 private:
  friend class VerbQueue;

  /// Every VerbQueue with a manager registers for snapshot aggregation;
  /// on destruction its final telemetry folds into retired_. A queue must
  /// not outlive its manager.
  void RegisterVq(VerbQueue* vq);
  void UnregisterVq(VerbQueue* vq);

  QueuePair* CreateQp();

  Fabric* fabric_;
  Node* local_;
  Node* remote_;
  uint64_t instance_id_;
  mutable std::mutex mu_;  // Guards thread_vqs_, live_vqs_, retired_.
  std::vector<VerbQueue*> live_vqs_;
  RdmaVerbStats retired_;
  // Declared after the registry so the owned queues die first: their
  // destructors unregister through mu_/live_vqs_/retired_.
  std::vector<std::unique_ptr<VerbQueue>> thread_vqs_;

  static std::atomic<uint64_t> next_instance_id_;
};

/// A doorbell wave of one-sided READs on the posting thread's verb queue:
/// Add() posts without waiting; WaitAll() harvests the wave, so N small
/// reads cost one base latency plus their wire occupancy instead of N
/// round trips. Thin wrapper over a WrHandle vector: any number of waves
/// may be live at once and other verbs may interleave with a wave. A
/// destroyed batch cancels its un-waited reads without blocking (safe
/// during error unwind). The wave stays on the thread that posted it.
class ReadBatch {
 public:
  explicit ReadBatch(RdmaManager* mgr) : mgr_(mgr) {}

  ReadBatch(const ReadBatch&) = delete;
  ReadBatch& operator=(const ReadBatch&) = delete;

  /// Posts one READ of [raddr, raddr+len) into dst; returns its slot.
  size_t Add(void* dst, uint64_t raddr, uint32_t rkey, size_t len);

  size_t size() const { return handles_.size(); }

  /// Blocks until every posted READ has completed; returns the first
  /// failure. Idempotent; per-slot outcomes via status().
  Status WaitAll();

  /// Completion status of slot i; only valid after WaitAll().
  const Status& status(size_t i) const { return handles_[i].status(); }

 private:
  RdmaManager* mgr_;
  VerbQueue* vq_ = nullptr;  // Bound to the posting thread's VQ on first Add.
  std::vector<WrHandle> handles_;
  Status first_;
};

/// Completion future for a one-sided "ready stamp" (PostWriteStamped
/// protocol): the consumer of an incoming one-sided WRITE has no CQ entry
/// for it, so delivery is detected by polling the stamp word the RNIC
/// writes last. Wait() parks politely in virtual time and then adopts the
/// writer's wire completion time (AdvanceTo), preserving causality. This
/// is the handle type for RPC reply waiters.
class StampFuture {
 public:
  StampFuture(Env* env, const void* stamp_addr)
      : env_(env), stamp_(stamp_addr) {}

  /// Nonblocking: true once the stamp has been released.
  bool Ready() const { return QueuePair::ReadReadyStamp(stamp_) != 0; }

  /// Blocks until the stamp is released, then advances to the writer's
  /// completion time. Idempotent.
  Status Wait();

  /// As Wait(), but gives up once the environment clock reaches
  /// deadline_ns (returning an IOError). A reply abandoned this way may
  /// still land later — the buffer under the stamp must then be retired,
  /// not reused (see RpcClient's zombie contexts).
  Status WaitUntil(uint64_t deadline_ns);

  /// The writer's wire completion time; valid after Wait().
  uint64_t completion_ns() const { return completion_ns_; }

 private:
  Env* env_;
  const void* stamp_;
  uint64_t completion_ns_ = 0;
};

}  // namespace rdma
}  // namespace dlsm

#endif  // DLSM_RDMA_RDMA_MANAGER_H_
