#include "src/baselines/presets.h"

namespace dlsm {
namespace baselines {

namespace {

Options CommonPortOptions(Env* env) {
  Options options;
  options.env = env;
  options.write_path = WritePath::kWriterQueue;
  options.switch_policy = MemTableSwitchPolicy::kDoubleCheckedSize;
  options.table_format = TableFormat::kBlock;
  options.extra_io_copy = true;  // The file-system layer of the port.
  options.compaction_placement = CompactionPlacement::kComputeSide;
  return options;
}

}  // namespace

Options RocksDbRdmaOptions(Env* env, size_t block_size) {
  Options options = CommonPortOptions(env);
  options.block_size = block_size;
  // The straight port keeps RocksDB's storage-oriented behavior: index
  // blocks live with the table and are fetched per probe. Only the
  // memory-optimized variant (and dLSM) cache them on the compute node.
  options.cache_index_blocks = false;
  return options;
}

Options MemoryRocksDbRdmaOptions(Env* env, size_t entry_size) {
  Options options = CommonPortOptions(env);
  // Block per entry: reads fetch a single kv-sized block, but still pay
  // the block wrapper (paper: "it does not need to go through the block
  // wrapper" is dLSM's advantage over this baseline).
  options.block_size = entry_size;
  return options;
}

Options NovaLsmOptions(Env* env, int subranges) {
  Options options = CommonPortOptions(env);
  options.block_size = 8192;
  // Nova-LSM executes compaction at the storage component.
  options.compaction_placement = CompactionPlacement::kNearData;
  // The long read path: point reads are served by the storage node.
  options.reads_via_rpc = true;
  options.shards = subranges;
  return options;
}

}  // namespace baselines
}  // namespace dlsm
