// Baseline configurations (paper Sec. XI-A).
//
// The paper's LSM baselines are ports of RocksDB / Nova-LSM onto the
// disaggregated setup; they differ from dLSM exactly in the mechanisms this
// engine exposes as options. Each preset composes the mechanisms that
// define one baseline:
//
//  * RocksDB-RDMA (8 KB / 2 KB): mutexed writer-queue commit path, naive
//    size-triggered MemTable switching, block SSTables of the given size
//    read at block granularity, one extra buffer copy per I/O for the
//    RDMA-oriented file system, and compute-side compaction that pulls and
//    pushes every byte over the wire.
//  * Memory-RocksDB-RDMA: the same, with entry-sized blocks and the index
//    cached on the compute node (so reads fetch one tiny block).
//  * Nova-LSM: writer-queue commit path, block SSTables over tmpfs (extra
//    copy), remote compaction through the storage layer, server-mediated
//    point reads (the "long read path"), and many sub-ranges for parallel
//    L0 compaction — deploy with options.shards = 64 via ShardedDB.
//
// Sherman (baseline #5) is a different index entirely; see sherman.h.

#ifndef DLSM_BASELINES_PRESETS_H_
#define DLSM_BASELINES_PRESETS_H_

#include "src/core/options.h"

namespace dlsm {
namespace baselines {

/// Starts from dLSM defaults and applies the RocksDB-RDMA port mechanisms.
Options RocksDbRdmaOptions(Env* env, size_t block_size);

/// RocksDB-RDMA with entry-sized blocks ("Memory-RocksDB-RDMA").
Options MemoryRocksDbRdmaOptions(Env* env, size_t entry_size);

/// Nova-LSM-style configuration. Combine with options.shards (sub-ranges;
/// the paper uses 64) and open through ShardedDB.
Options NovaLsmOptions(Env* env, int subranges);

}  // namespace baselines
}  // namespace dlsm

#endif  // DLSM_BASELINES_PRESETS_H_
