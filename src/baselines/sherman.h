// Sherman-style B+-tree over disaggregated memory (paper baseline #5,
// [Wang, Lu, Shu; SIGMOD'22]).
//
// Model, following the paper's description of how Sherman behaves in this
// setting: internal nodes are cached in the compute node's local memory
// (here: an ordered map from separator key to leaf address — the cached
// internal search path costs local CPU only); leaf nodes are fixed-size
// blocks (default 1 KB) in remote memory.
//
//  * A write locks the leaf with an RDMA CAS, reads the 1 KB leaf, applies
//    the change locally, and writes the whole leaf back (the write clears
//    the lock word) — the read-modify-write round trips that make Sherman
//    writes slow relative to dLSM's buffered writes.
//  * A read issues exactly one RDMA READ of the leaf (the internal path is
//    cached), which is why Sherman slightly beats dLSM on random reads.
//  * A scan walks the leaves in key order, fetching one 1 KB leaf per
//    RDMA READ (no multi-MB prefetch).
//
// Wrapped in the DB interface so the bench harness drives all systems
// uniformly. Snapshots are not supported (Sherman is a single-version
// index); Flush/WaitForBackgroundIdle are no-ops (no background work).

#ifndef DLSM_BASELINES_SHERMAN_H_
#define DLSM_BASELINES_SHERMAN_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/db.h"
#include "src/rdma/fabric.h"
#include "src/rdma/rdma_manager.h"
#include "src/remote/remote_alloc.h"

namespace dlsm {
namespace baselines {

struct ShermanOptions {
  ShermanOptions() {}
  Env* env = nullptr;
  /// Leaf node size; the paper follows Sherman's default of 1 KB.
  size_t leaf_size = 1024;
  /// Remote region provisioned for leaves.
  size_t leaf_region_size = 1ull << 31;
};

/// Sherman-style B+-tree exposed through the DB interface.
class ShermanDB : public DB {
 public:
  static Status Open(const ShermanOptions& options, rdma::Fabric* fabric,
                     rdma::Node* compute, rdma::Node* memory, DB** dbptr);

  ~ShermanDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* batch) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status Flush() override { return Status::OK(); }
  Status WaitForBackgroundIdle() override { return Status::OK(); }
  DbStats GetStats() override;
  int NumFilesAtLevel(int) override { return 0; }
  Status Close() override;

  /// Number of leaves currently allocated (space accounting, Fig. 9).
  uint64_t num_leaves() const;

 private:
  friend class ShermanIterator;

  struct LeafEntry {
    std::string key;
    std::string value;
    bool tombstone = false;  // Unused; deletes remove entries outright.
  };
  struct Leaf {
    uint64_t lock = 0;
    uint64_t right_sibling = 0;
    std::vector<LeafEntry> entries;
  };

  ShermanDB(const ShermanOptions& options, rdma::Fabric* fabric,
            rdma::Node* compute, rdma::Node* memory);

  Status Init();

  /// Local cached-internal-node search: leaf address owning key.
  uint64_t RouteToLeaf(const Slice& key);
  /// Re-validates the route under the metadata lock.
  bool RouteStillValid(const Slice& key, uint64_t addr);

  Status LockLeaf(uint64_t addr);
  /// Reads and parses a leaf; retries on a torn concurrent update.
  Status ReadLeaf(uint64_t addr, Leaf* leaf);
  Status WriteLeafUnlock(uint64_t addr, const Leaf& leaf);
  size_t SerializedSize(const Leaf& leaf) const;
  void SerializeLeaf(const Leaf& leaf, std::string* out) const;
  bool ParseLeaf(const char* data, size_t len, Leaf* leaf) const;

  /// Applies one update (value == nullptr means delete) to the tree.
  Status Update(const Slice& key, const Slice* value);

  ShermanOptions options_;
  rdma::Fabric* fabric_;
  rdma::Node* compute_;
  rdma::Node* memory_;
  std::unique_ptr<rdma::RdmaManager> mgr_;
  rdma::MemoryRegion region_;
  std::unique_ptr<remote::SlabAllocator> leaf_alloc_;

  /// Cached internal nodes: separator (smallest key in leaf) -> leaf addr.
  std::mutex meta_mu_;
  std::map<std::string, uint64_t> leaf_index_;

  std::atomic<uint64_t> stat_writes_{0};
  std::atomic<uint64_t> stat_reads_{0};
  bool closed_ = false;
};

}  // namespace baselines
}  // namespace dlsm

#endif  // DLSM_BASELINES_SHERMAN_H_
