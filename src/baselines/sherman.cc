#include "src/baselines/sherman.h"

#include <algorithm>

#include "src/util/coding.h"
#include "src/util/logging.h"

namespace dlsm {
namespace baselines {

namespace {

// On-leaf layout:
//   u64 lock | u64 right_sibling | u32 count |
//   count * [varint32 klen | key | varint32 vlen | value]
constexpr size_t kLeafHeader = 8 + 8 + 4;

class ShermanSnapshot : public Snapshot {
 public:
  uint64_t sequence() const override { return 0; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

ShermanDB::ShermanDB(const ShermanOptions& options, rdma::Fabric* fabric,
                     rdma::Node* compute, rdma::Node* memory)
    : options_(options), fabric_(fabric), compute_(compute),
      memory_(memory) {}

Status ShermanDB::Open(const ShermanOptions& options, rdma::Fabric* fabric,
                       rdma::Node* compute, rdma::Node* memory, DB** dbptr) {
  *dbptr = nullptr;
  if (options.env == nullptr) {
    return Status::InvalidArgument("ShermanOptions.env must be set");
  }
  auto db = std::unique_ptr<ShermanDB>(
      new ShermanDB(options, fabric, compute, memory));
  DLSM_RETURN_NOT_OK(db->Init());
  *dbptr = db.release();
  return Status::OK();
}

Status ShermanDB::Init() {
  mgr_ = std::make_unique<rdma::RdmaManager>(fabric_, compute_, memory_);
  char* base = memory_->AllocDram(options_.leaf_region_size);
  if (base == nullptr) {
    return Status::OutOfMemory("memory node cannot provision leaf region");
  }
  region_ = fabric_->RegisterMemory(memory_, base, options_.leaf_region_size);
  leaf_alloc_ = std::make_unique<remote::SlabAllocator>(
      region_, options_.leaf_size, compute_->id());

  // Root leaf: empty, owns the whole key space.
  remote::RemoteChunk first = leaf_alloc_->Allocate();
  if (!first.valid()) return Status::OutOfMemory("leaf region too small");
  Leaf empty;
  DLSM_RETURN_NOT_OK(WriteLeafUnlock(first.addr, empty));
  leaf_index_[""] = first.addr;
  return Status::OK();
}

ShermanDB::~ShermanDB() { Close(); }

Status ShermanDB::Close() {
  closed_ = true;
  return Status::OK();
}

uint64_t ShermanDB::num_leaves() const { return leaf_alloc_->allocated_chunks(); }

// ---------------------------------------------------------------------------
// Leaf I/O
// ---------------------------------------------------------------------------

size_t ShermanDB::SerializedSize(const Leaf& leaf) const {
  size_t n = kLeafHeader;
  for (const LeafEntry& e : leaf.entries) {
    n += VarintLength(e.key.size()) + e.key.size() +
         VarintLength(e.value.size()) + e.value.size();
  }
  return n;
}

void ShermanDB::SerializeLeaf(const Leaf& leaf, std::string* out) const {
  out->clear();
  PutFixed64(out, leaf.lock);
  PutFixed64(out, leaf.right_sibling);
  PutFixed32(out, static_cast<uint32_t>(leaf.entries.size()));
  for (const LeafEntry& e : leaf.entries) {
    PutLengthPrefixedSlice(out, e.key);
    PutLengthPrefixedSlice(out, e.value);
  }
  DLSM_CHECK(out->size() <= options_.leaf_size);
  out->resize(options_.leaf_size, '\0');
}

bool ShermanDB::ParseLeaf(const char* data, size_t len, Leaf* leaf) const {
  if (len < kLeafHeader) return false;
  leaf->lock = DecodeFixed64(data);
  leaf->right_sibling = DecodeFixed64(data + 8);
  uint32_t count = DecodeFixed32(data + 16);
  leaf->entries.clear();
  Slice input(data + kLeafHeader, len - kLeafHeader);
  for (uint32_t i = 0; i < count; i++) {
    Slice k, v;
    if (!GetLengthPrefixedSlice(&input, &k) ||
        !GetLengthPrefixedSlice(&input, &v)) {
      return false;
    }
    LeafEntry e;
    e.key = k.ToString();
    e.value = v.ToString();
    leaf->entries.push_back(std::move(e));
  }
  return true;
}

Status ShermanDB::LockLeaf(uint64_t addr) {
  Env* env = options_.env;
  for (;;) {
    uint64_t prev = 0;
    DLSM_RETURN_NOT_OK(mgr_->CmpSwap(addr, region_.rkey, 0, 1, &prev));
    if (prev == 0) return Status::OK();
    env->YieldToOthers();  // Contended: spin via RDMA CAS, as Sherman does.
  }
}

Status ShermanDB::ReadLeaf(uint64_t addr, Leaf* leaf) {
  std::string buf(options_.leaf_size, '\0');
  for (int attempt = 0; attempt < 64; attempt++) {
    DLSM_RETURN_NOT_OK(
        mgr_->Read(buf.data(), addr, region_.rkey, options_.leaf_size));
    if (ParseLeaf(buf.data(), buf.size(), leaf)) {
      return Status::OK();
    }
    options_.env->YieldToOthers();  // Torn concurrent update; retry.
  }
  return Status::Corruption("persistent torn leaf read");
}

Status ShermanDB::WriteLeafUnlock(uint64_t addr, const Leaf& leaf) {
  Leaf unlocked = leaf;
  unlocked.lock = 0;
  std::string buf;
  SerializeLeaf(unlocked, &buf);
  // Single write covering the whole leaf; clearing the lock word releases
  // the leaf in the same round trip.
  return mgr_->Write(buf.data(), addr, region_.rkey, buf.size());
}

// ---------------------------------------------------------------------------
// Routing (cached internal nodes)
// ---------------------------------------------------------------------------

uint64_t ShermanDB::RouteToLeaf(const Slice& key) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = leaf_index_.upper_bound(key.ToString());
  DLSM_CHECK(it != leaf_index_.begin());
  --it;
  return it->second;
}

bool ShermanDB::RouteStillValid(const Slice& key, uint64_t addr) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = leaf_index_.upper_bound(key.ToString());
  --it;
  return it->second == addr;
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

Status ShermanDB::Update(const Slice& key, const Slice* value) {
  if (value != nullptr &&
      key.size() + value->size() + 16 > options_.leaf_size - kLeafHeader) {
    return Status::InvalidArgument("entry larger than a Sherman leaf");
  }
  for (;;) {
    uint64_t addr = RouteToLeaf(key);
    DLSM_RETURN_NOT_OK(LockLeaf(addr));
    if (!RouteStillValid(key, addr)) {
      // The leaf split under us; release and retry against the new route.
      Leaf current;
      DLSM_RETURN_NOT_OK(ReadLeaf(addr, &current));
      DLSM_RETURN_NOT_OK(WriteLeafUnlock(addr, current));
      continue;
    }
    Leaf leaf;
    DLSM_RETURN_NOT_OK(ReadLeaf(addr, &leaf));

    // Apply locally.
    auto it = std::lower_bound(
        leaf.entries.begin(), leaf.entries.end(), key,
        [](const LeafEntry& e, const Slice& k) {
          return Slice(e.key).compare(k) < 0;
        });
    if (value == nullptr) {
      if (it != leaf.entries.end() && Slice(it->key) == key) {
        leaf.entries.erase(it);
      }
    } else if (it != leaf.entries.end() && Slice(it->key) == key) {
      it->value = value->ToString();
    } else {
      LeafEntry e;
      e.key = key.ToString();
      e.value = value->ToString();
      leaf.entries.insert(it, std::move(e));
    }

    if (SerializedSize(leaf) <= options_.leaf_size) {
      DLSM_RETURN_NOT_OK(WriteLeafUnlock(addr, leaf));
      stat_writes_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Split: upper half moves to a fresh leaf chained as right sibling.
    remote::RemoteChunk right_chunk = leaf_alloc_->Allocate();
    if (!right_chunk.valid()) {
      DLSM_RETURN_NOT_OK(WriteLeafUnlock(addr, leaf));  // Best effort.
      return Status::OutOfMemory("Sherman leaf region exhausted");
    }
    Leaf right;
    size_t mid = leaf.entries.size() / 2;
    right.entries.assign(leaf.entries.begin() + mid, leaf.entries.end());
    right.right_sibling = leaf.right_sibling;
    leaf.entries.resize(mid);
    leaf.right_sibling = right_chunk.addr;
    std::string right_smallest = right.entries.front().key;

    DLSM_RETURN_NOT_OK(WriteLeafUnlock(right_chunk.addr, right));
    DLSM_RETURN_NOT_OK(WriteLeafUnlock(addr, leaf));
    {
      // Update the cached internal nodes (a local operation in Sherman,
      // plus an internal-node write-back we fold into the cache).
      std::lock_guard<std::mutex> lock(meta_mu_);
      leaf_index_[right_smallest] = right_chunk.addr;
    }
    stat_writes_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
}

Status ShermanDB::Put(const WriteOptions&, const Slice& key,
                      const Slice& value) {
  return Update(key, &value);
}

Status ShermanDB::Delete(const WriteOptions&, const Slice& key) {
  return Update(key, nullptr);
}

Status ShermanDB::Write(const WriteOptions& options, WriteBatch* batch) {
  struct Applier : public WriteBatch::Handler {
    ShermanDB* db;
    Status status;
    void Put(const Slice& key, const Slice& value) override {
      if (status.ok()) status = db->Update(key, &value);
    }
    void Delete(const Slice& key) override {
      if (status.ok()) status = db->Update(key, nullptr);
    }
  };
  (void)options;
  Applier applier;
  applier.db = this;
  DLSM_RETURN_NOT_OK(batch->Iterate(&applier));
  return applier.status;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status ShermanDB::Get(const ReadOptions&, const Slice& key,
                      std::string* value) {
  stat_reads_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    uint64_t addr = RouteToLeaf(key);
    Leaf leaf;
    DLSM_RETURN_NOT_OK(ReadLeaf(addr, &leaf));  // One RDMA READ.
    if (!RouteStillValid(key, addr)) {
      continue;  // Split raced with us.
    }
    auto it = std::lower_bound(
        leaf.entries.begin(), leaf.entries.end(), key,
        [](const LeafEntry& e, const Slice& k) {
          return Slice(e.key).compare(k) < 0;
        });
    if (it != leaf.entries.end() && Slice(it->key) == key) {
      *value = it->value;
      return Status::OK();
    }
    return Status::NotFound(Slice());
  }
}

/// Walks leaves in key order, one 1 KB RDMA READ per leaf.
class ShermanIterator : public Iterator {
 public:
  explicit ShermanIterator(ShermanDB* db) : db_(db) {}

  bool Valid() const override { return pos_ < entries_.size(); }
  Slice key() const override { return entries_[pos_].first; }
  Slice value() const override { return entries_[pos_].second; }
  Status status() const override { return status_; }

  void SeekToFirst() override {
    SnapshotRouting();
    route_pos_ = 0;
    LoadUntilNonEmptyForward();
  }

  void SeekToLast() override {
    SnapshotRouting();
    route_pos_ = routes_.empty() ? 0 : routes_.size() - 1;
    LoadCurrent();
    while (entries_.empty() && route_pos_ > 0) {
      route_pos_--;
      LoadCurrent();
    }
    pos_ = entries_.empty() ? 0 : entries_.size() - 1;
  }

  void Seek(const Slice& target) override {
    SnapshotRouting();
    // Last route whose separator is <= target.
    size_t lo = 0, hi = routes_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (Slice(routes_[mid].first).compare(target) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    route_pos_ = lo == 0 ? 0 : lo - 1;
    LoadCurrent();
    pos_ = 0;
    while (pos_ < entries_.size() &&
           Slice(entries_[pos_].first).compare(target) < 0) {
      pos_++;
    }
    if (pos_ >= entries_.size()) {
      AdvanceLeafForward();
    }
  }

  void Next() override {
    DLSM_CHECK(Valid());
    pos_++;
    if (pos_ >= entries_.size()) {
      AdvanceLeafForward();
    }
  }

  void Prev() override {
    DLSM_CHECK(Valid());
    if (pos_ > 0) {
      pos_--;
      return;
    }
    while (route_pos_ > 0) {
      route_pos_--;
      LoadCurrent();
      if (!entries_.empty()) {
        pos_ = entries_.size() - 1;
        return;
      }
    }
    entries_.clear();
    pos_ = 0;
  }

 private:
  void SnapshotRouting() {
    std::lock_guard<std::mutex> lock(db_->meta_mu_);
    routes_.assign(db_->leaf_index_.begin(), db_->leaf_index_.end());
  }

  void LoadCurrent() {
    entries_.clear();
    pos_ = 0;
    if (route_pos_ >= routes_.size()) return;
    ShermanDB::Leaf leaf;
    Status s = db_->ReadLeaf(routes_[route_pos_].second, &leaf);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    for (auto& e : leaf.entries) {
      entries_.emplace_back(std::move(e.key), std::move(e.value));
    }
  }

  void LoadUntilNonEmptyForward() {
    LoadCurrent();
    while (entries_.empty() && route_pos_ + 1 < routes_.size()) {
      route_pos_++;
      LoadCurrent();
    }
  }

  void AdvanceLeafForward() {
    if (route_pos_ + 1 >= routes_.size()) {
      entries_.clear();
      pos_ = 0;
      return;
    }
    route_pos_++;
    LoadUntilNonEmptyForward();
  }

  ShermanDB* db_;
  std::vector<std::pair<std::string, uint64_t>> routes_;
  size_t route_pos_ = 0;
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
  Status status_;
};

Iterator* ShermanDB::NewIterator(const ReadOptions&) {
  return new ShermanIterator(this);
}

const Snapshot* ShermanDB::GetSnapshot() { return new ShermanSnapshot(); }

void ShermanDB::ReleaseSnapshot(const Snapshot* snapshot) { delete snapshot; }

DbStats ShermanDB::GetStats() {
  DbStats s;
  s.writes = stat_writes_.load();
  s.reads = stat_reads_.load();
  s.rdma = mgr_->StatsSnapshot();
  return s;
}

}  // namespace baselines
}  // namespace dlsm
