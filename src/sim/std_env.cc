// StdEnv: the real-time environment — std::thread, std::mutex and the
// monotonic clock. Used for correctness tests that need true concurrency.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/sim/env.h"
#include "src/util/logging.h"

namespace dlsm {

namespace {

// Identity of the calling thread, set by StartThread's wrapper before the
// user function runs. Foreign threads (the host main thread) keep the
// defaults: id 0, node 0, no name.
thread_local uint64_t tls_thread_id = 0;
thread_local int tls_node_id = 0;
thread_local std::string* tls_thread_name = nullptr;

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class StdMutex : public MutexImpl {
 public:
  void Lock() override { mu_.lock(); }
  void Unlock() override { mu_.unlock(); }
  std::mutex* raw() { return &mu_; }

 private:
  std::mutex mu_;
};

class StdCondVar : public CondVarImpl {
 public:
  explicit StdCondVar(StdMutex* mu) : mu_(mu) {}

  void Wait() override {
    std::unique_lock<std::mutex> lock(*mu_->raw(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  bool TimedWait(uint64_t timeout_ns) override {
    std::unique_lock<std::mutex> lock(*mu_->raw(), std::adopt_lock);
    auto st = cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns));
    lock.release();
    return st == std::cv_status::timeout;
  }

  void Signal() override { cv_.notify_one(); }
  void SignalAll() override { cv_.notify_all(); }

 private:
  StdMutex* mu_;
  std::condition_variable cv_;
};

class StdBarrier : public BarrierImpl {
 public:
  explicit StdBarrier(int parties) : parties_(parties) {}

  void Arrive() override {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      generation_++;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

class StdEnv : public Env {
 public:
  StdEnv() : origin_(SteadyNowNanos()) {}

  ~StdEnv() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, t] : threads_) {
      if (t.joinable()) t.join();
    }
  }

  bool is_simulated() const override { return false; }

  uint64_t NowNanos() override { return SteadyNowNanos() - origin_; }

  void SleepNanos(uint64_t ns) override {
    if (ns < 100000) {
      // Short waits: spin for accuracy; the OS sleep granularity is coarse.
      uint64_t deadline = SteadyNowNanos() + ns;
      while (SteadyNowNanos() < deadline) {
      }
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
  }

  void AdvanceTo(uint64_t t_ns) override {
    uint64_t now = NowNanos();
    if (t_ns > now) SleepNanos(t_ns - now);
  }

  void MaybeYield() override {}

  void YieldToOthers() override { std::this_thread::yield(); }

  int RegisterNode(const std::string& name, int cores) override {
    (void)cores;
    // Real hardware enforces its own core budget; nodes are bookkeeping
    // only — but names are kept for trace attribution.
    std::lock_guard<std::mutex> lock(mu_);
    int id = next_node_id_++;
    node_names_[id] = name;
    return id;
  }

  ThreadHandle StartThread(int node_id, const std::string& name,
                           std::function<void()> fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t id = next_thread_id_++;
    threads_.emplace(
        id, std::thread([id, node_id, name, fn = std::move(fn)]() mutable {
          std::string thread_name = name;
          tls_thread_id = id;
          tls_node_id = node_id;
          tls_thread_name = &thread_name;
          fn();
          tls_thread_name = nullptr;
        }));
    return ThreadHandle{id};
  }

  void Join(ThreadHandle h) override {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = threads_.find(h.id);
      DLSM_CHECK_MSG(it != threads_.end(), "joining unknown thread");
      t = std::move(it->second);
      threads_.erase(it);
    }
    if (t.joinable()) t.join();
  }

  uint64_t CurrentThreadId() override { return tls_thread_id; }

  int CurrentNodeId() override { return tls_node_id; }

  std::string CurrentThreadName() override {
    return tls_thread_name != nullptr ? *tls_thread_name : std::string();
  }

  std::string NodeName(int node_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = node_names_.find(node_id);
    return it != node_names_.end() ? it->second : std::string("default");
  }

  MutexImpl* NewMutex() override { return new StdMutex(); }

  CondVarImpl* NewCondVar(MutexImpl* mu) override {
    return new StdCondVar(static_cast<StdMutex*>(mu));
  }

  BarrierImpl* NewBarrier(int parties) override {
    return new StdBarrier(parties);
  }

 private:
  uint64_t origin_;
  std::mutex mu_;
  std::unordered_map<uint64_t, std::thread> threads_;
  std::unordered_map<int, std::string> node_names_;
  uint64_t next_thread_id_ = 1;
  int next_node_id_ = 1;
};

}  // namespace

Env* Env::Std() {
  static StdEnv* env = new StdEnv();
  return env;
}

}  // namespace dlsm
