// Env-aware fixed-size thread pool, used for background flush workers on
// the compute node and compaction workers on the memory node.

#ifndef DLSM_SIM_THREAD_POOL_H_
#define DLSM_SIM_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/env.h"

namespace dlsm {

/// Fixed-size pool of Env threads consuming a FIFO work queue.
class ThreadPool {
 public:
  /// Starts num_threads workers attributed to node_id.
  ThreadPool(Env* env, int node_id, int num_threads, const std::string& name);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  Env* env_;
  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<ThreadHandle> workers_;
  int busy_ = 0;
  bool shutdown_ = false;
};

}  // namespace dlsm

#endif  // DLSM_SIM_THREAD_POOL_H_
