#include "src/sim/sim_env.h"

#include <time.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/util/logging.h"

namespace dlsm {

namespace {
thread_local SimEnv::SimThread* tls_current = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// Sim synchronization primitives
// ---------------------------------------------------------------------------

/// Virtual-time mutex with FIFO handoff: the releaser passes ownership
/// directly to the head waiter, whose LVT is advanced to the releaser's, so
/// contention queues in virtual time.
class SimMutexImpl : public MutexImpl {
 public:
  explicit SimMutexImpl(SimEnv* env) : env_(env) {}

  void Lock() override {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    LockHeld(self, lk);
  }

  void Unlock() override {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    UnlockHeld(self);
  }

 private:
  friend class SimCondVarImpl;

  // Requires env_->gm_. May park the caller until ownership is handed off.
  void LockHeld(SimEnv::SimThread* self, std::unique_lock<std::mutex>& lk) {
    if (holder_ == nullptr) {
      holder_ = self;
      self->lvt = std::max(self->lvt, release_lvt_);
      return;
    }
    waiters_.push_back(self);
    env_->SetStateLocked(self, SimEnv::State::kBlocked);
    env_->SwitchOutLocked(self, lk);
    DLSM_CHECK(holder_ == self);  // FIFO handoff.
  }

  // Requires env_->gm_.
  void UnlockHeld(SimEnv::SimThread* self) {
    DLSM_CHECK_MSG(holder_ == self, "unlock by non-holder");
    release_lvt_ = std::max(release_lvt_, self->lvt);
    if (waiters_.empty()) {
      holder_ = nullptr;
    } else {
      SimEnv::SimThread* next = waiters_.front();
      waiters_.pop_front();
      holder_ = next;
      env_->MakeReadyLocked(next, self->lvt);
    }
  }

  SimEnv* env_;
  SimEnv::SimThread* holder_ = nullptr;
  uint64_t release_lvt_ = 0;
  std::deque<SimEnv::SimThread*> waiters_;
};

/// Virtual-time condition variable. Signal() transfers causality: the woken
/// waiter's LVT becomes at least the signaler's.
class SimCondVarImpl : public CondVarImpl {
 public:
  SimCondVarImpl(SimEnv* env, SimMutexImpl* mu) : env_(env), mu_(mu) {}

  void Wait() override { WaitInternal(UINT64_MAX); }

  bool TimedWait(uint64_t timeout_ns) override {
    return WaitInternal(timeout_ns);
  }

  void Signal() override {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    if (!waiters_.empty()) {
      WakeOneLocked(self->lvt);
    }
  }

  void SignalAll() override {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    while (!waiters_.empty()) {
      WakeOneLocked(self->lvt);
    }
  }

 private:
  // Requires env_->gm_ and non-empty waiters_.
  void WakeOneLocked(uint64_t from_lvt) {
    SimEnv::SimThread* w = waiters_.front();
    waiters_.pop_front();
    w->timed_out = false;
    env_->MakeReadyLocked(w, from_lvt);
  }

  bool WaitInternal(uint64_t timeout_ns) {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    mu_->UnlockHeld(self);
    waiters_.push_back(self);
    if (timeout_ns == UINT64_MAX) {
      env_->SetStateLocked(self, SimEnv::State::kBlocked);
    } else {
      self->wake_time = self->lvt + timeout_ns;
      env_->SetStateLocked(self, SimEnv::State::kTimed);
    }
    self->timed_out = false;
    env_->SwitchOutLocked(self, lk);
    bool timed_out = self->timed_out;
    if (timed_out) {
      // Deadline expiry: remove ourselves from the wait list.
      auto it = std::find(waiters_.begin(), waiters_.end(), self);
      if (it != waiters_.end()) waiters_.erase(it);
    }
    mu_->LockHeld(self, lk);
    return timed_out;
  }

  SimEnv* env_;
  SimMutexImpl* mu_;
  std::deque<SimEnv::SimThread*> waiters_;
};

/// Virtual-time barrier: all parties leave with LVT equal to the maximum
/// LVT among arrivers, making before/after timing reads well-defined.
class SimBarrierImpl : public BarrierImpl {
 public:
  SimBarrierImpl(SimEnv* env, int parties) : env_(env), parties_(parties) {}

  void Arrive() override {
    SimEnv::SimThread* self = env_->Current();
    std::unique_lock<std::mutex> lk(env_->gm_);
    env_->ChargeCpuLocked(self);
    max_lvt_ = std::max(max_lvt_, self->lvt);
    if (++arrived_ == parties_) {
      arrived_ = 0;
      uint64_t m = max_lvt_;
      max_lvt_ = 0;
      self->lvt = m;
      for (SimEnv::SimThread* w : waiters_) {
        env_->MakeReadyLocked(w, m);
      }
      waiters_.clear();
    } else {
      waiters_.push_back(self);
      env_->SetStateLocked(self, SimEnv::State::kBlocked);
      env_->SwitchOutLocked(self, lk);
    }
  }

 private:
  SimEnv* env_;
  int parties_;
  int arrived_ = 0;
  uint64_t max_lvt_ = 0;
  std::vector<SimEnv::SimThread*> waiters_;
};

// ---------------------------------------------------------------------------
// SimEnv
// ---------------------------------------------------------------------------

SimEnv::SimEnv(Options options) : options_(options) {
  auto node0 = std::make_unique<SimNode>();
  node0->name = "default";
  node0->cores = 0;  // Unlimited.
  nodes_.push_back(std::move(node0));
}

SimEnv::~SimEnv() {
  for (auto& t : threads_) {
    if (t->os_thread.joinable()) t->os_thread.join();
  }
}

uint64_t SimEnv::ThreadCpuNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

SimEnv::SimThread* SimEnv::Current() {
  DLSM_CHECK_MSG(tls_current != nullptr,
                 "Env call from a thread not managed by SimEnv");
  return tls_current;
}

double SimEnv::FactorLocked(int node) const {
  const SimNode& n = *nodes_[node];
  if (n.cores <= 0 || n.active <= n.cores) return 1.0;
  return static_cast<double>(n.active) / static_cast<double>(n.cores);
}

void SimEnv::SetStateLocked(SimThread* t, State s) {
  auto counts = [](State st) {
    return st == State::kReady || st == State::kRunning;
  };
  bool was = counts(t->state);
  bool now = counts(s);
  if (was && !now) nodes_[t->node]->active--;
  if (!was && now) nodes_[t->node]->active++;
  t->state = s;
}

void SimEnv::ChargeCpuLocked(SimThread* self) {
  uint64_t now = ThreadCpuNanos();
  uint64_t delta = now > self->cpu_start ? now - self->cpu_start : 0;
  self->cpu_start = now;
  double factor = FactorLocked(self->node);
  self->lvt += static_cast<uint64_t>(static_cast<double>(delta) * factor *
                                     options_.cpu_scale);
  max_lvt_seen_ = std::max(max_lvt_seen_, self->lvt);
}

void SimEnv::StartSliceLocked(SimThread* t) {
  t->cpu_start = ThreadCpuNanos();
  t->factor_cache = FactorLocked(t->node);
}

SimEnv::SimThread* SimEnv::PickNextLocked() {
  SimThread* best = nullptr;
  uint64_t best_key = UINT64_MAX;
  for (auto& tp : threads_) {
    SimThread* t = tp.get();
    uint64_t key;
    if (t->state == State::kReady) {
      key = t->lvt;
    } else if (t->state == State::kTimed) {
      key = t->wake_time;
    } else {
      continue;
    }
    if (key < best_key || (key == best_key && best != nullptr &&
                           t->id < best->id)) {
      best_key = key;
      best = t;
    }
  }
  return best;
}

void SimEnv::MakeReadyLocked(SimThread* t, uint64_t from_lvt) {
  t->lvt = std::max(t->lvt, from_lvt);
  t->wake_time = UINT64_MAX;
  SetStateLocked(t, State::kReady);
}

void SimEnv::ResumeLocked(SimThread* t) {
  if (t->state == State::kTimed) {
    // Deadline expiry path.
    t->lvt = std::max(t->lvt, t->wake_time);
    t->wake_time = UINT64_MAX;
    t->timed_out = true;
    SetStateLocked(t, State::kReady);
  }
  DLSM_CHECK(t->state == State::kReady);
  SetStateLocked(t, State::kRunning);
  max_lvt_seen_ = std::max(max_lvt_seen_, t->lvt);
}

void SimEnv::SwitchOutLocked(SimThread* self,
                             std::unique_lock<std::mutex>& lk) {
  SimThread* next = PickNextLocked();
  if (next == self) {
    ResumeLocked(self);
    StartSliceLocked(self);
    return;
  }
  if (next == nullptr) {
    DeadlockAbortLocked();
  }
  ResumeLocked(next);
  // next calls StartSliceLocked itself on wake; the CPU clock is per-thread.
  next->go = true;
  next->cv.notify_one();
  self->cv.wait(lk, [self] { return self->go; });
  self->go = false;
  // Scheduled again; our state was set to kRunning by the waker.
  StartSliceLocked(self);
}

void SimEnv::PassBatonLocked(SimThread* self) {
  (void)self;
  SimThread* next = PickNextLocked();
  if (next == nullptr) {
    if (live_threads_ > 0) {
      DeadlockAbortLocked();
    }
    all_done_cv_.notify_all();
    return;
  }
  ResumeLocked(next);
  next->go = true;
  next->cv.notify_one();
}

void SimEnv::FinishThreadLocked(SimThread* self,
                                std::unique_lock<std::mutex>& lk) {
  (void)lk;
  ChargeCpuLocked(self);
  for (SimThread* j : self->joiners) {
    MakeReadyLocked(j, self->lvt);
  }
  self->joiners.clear();
  SetStateLocked(self, State::kFinished);
  live_threads_--;
  PassBatonLocked(self);
}

void SimEnv::DeadlockAbortLocked() {
  std::fprintf(stderr,
               "SimEnv: DEADLOCK — no runnable or timed thread remains.\n");
  for (auto& t : threads_) {
    const char* s = "?";
    switch (t->state) {
      case State::kReady:
        s = "ready";
        break;
      case State::kRunning:
        s = "running";
        break;
      case State::kTimed:
        s = "timed";
        break;
      case State::kBlocked:
        s = "blocked";
        break;
      case State::kFinished:
        s = "finished";
        break;
    }
    std::fprintf(stderr, "  thread %" PRIu64 " [%s] node=%d state=%s lvt=%" PRIu64
                         " wake=%" PRIu64 "\n",
                 t->id, t->name.c_str(), t->node, s, t->lvt, t->wake_time);
  }
  std::abort();
}

void SimEnv::ThreadBody(SimThread* t) {
  tls_current = t;
  {
    std::unique_lock<std::mutex> lk(gm_);
    t->cv.wait(lk, [t] { return t->go; });
    t->go = false;
    StartSliceLocked(t);
  }
  t->fn();
  {
    std::unique_lock<std::mutex> lk(gm_);
    FinishThreadLocked(t, lk);
  }
  tls_current = nullptr;
}

void SimEnv::Run(int node_id, std::function<void()> root) {
  DLSM_CHECK_MSG(!ran_, "SimEnv::Run may only be called once");
  ran_ = true;

  auto rt = std::make_unique<SimThread>();
  SimThread* t = rt.get();
  t->id = next_thread_id_++;
  t->name = "root";
  t->node = node_id;
  t->state = State::kBlocked;  // So the kRunning transition counts it active.
  {
    std::unique_lock<std::mutex> lk(gm_);
    threads_.push_back(std::move(rt));
    live_threads_++;
    SetStateLocked(t, State::kRunning);
    StartSliceLocked(t);
  }
  tls_current = t;
  root();
  {
    std::unique_lock<std::mutex> lk(gm_);
    FinishThreadLocked(t, lk);
    // The baton (if any) has been passed; wait for the rest of the world.
    all_done_cv_.wait(lk, [this] { return live_threads_ == 0; });
  }
  tls_current = nullptr;
}

uint64_t SimEnv::NowNanos() {
  SimThread* self = tls_current;
  if (self == nullptr) return 0;
  uint64_t now = ThreadCpuNanos();
  uint64_t delta = now > self->cpu_start ? now - self->cpu_start : 0;
  return self->lvt +
         static_cast<uint64_t>(static_cast<double>(delta) *
                               self->factor_cache * options_.cpu_scale);
}

void SimEnv::SleepNanos(uint64_t ns) {
  SimThread* self = Current();
  std::unique_lock<std::mutex> lk(gm_);
  ChargeCpuLocked(self);
  self->wake_time = self->lvt + ns;
  SetStateLocked(self, State::kTimed);
  SwitchOutLocked(self, lk);
}

void SimEnv::AdvanceTo(uint64_t t_ns) {
  SimThread* self = Current();
  std::unique_lock<std::mutex> lk(gm_);
  ChargeCpuLocked(self);
  if (t_ns <= self->lvt) return;
  self->wake_time = t_ns;
  SetStateLocked(self, State::kTimed);
  SwitchOutLocked(self, lk);
}

void SimEnv::MaybeYield() {
  SimThread* self = Current();
  std::unique_lock<std::mutex> lk(gm_);
  ChargeCpuLocked(self);
  SetStateLocked(self, State::kReady);
  SwitchOutLocked(self, lk);
}

uint64_t SimEnv::UncountedBegin() { return ThreadCpuNanos(); }

void SimEnv::UncountedEnd(uint64_t token) {
  SimThread* self = tls_current;
  if (self == nullptr) return;
  // Push the slice start forward so the bracketed CPU time is never
  // charged. cpu_start <= token <= now, so this cannot exceed "now".
  self->cpu_start += ThreadCpuNanos() - token;
}

void SimEnv::YieldToOthers() {
  SimThread* self = Current();
  std::unique_lock<std::mutex> lk(gm_);
  ChargeCpuLocked(self);
  // Jump just past the earliest other thread so it gets to run first.
  uint64_t m = UINT64_MAX;
  for (auto& tp : threads_) {
    SimThread* t = tp.get();
    if (t == self) continue;
    if (t->state == State::kReady) m = std::min(m, t->lvt);
    if (t->state == State::kTimed) m = std::min(m, t->wake_time);
  }
  if (m != UINT64_MAX && m >= self->lvt) {
    self->lvt = m + 1;
  }
  SetStateLocked(self, State::kReady);
  SwitchOutLocked(self, lk);
}

int SimEnv::RegisterNode(const std::string& name, int cores) {
  std::unique_lock<std::mutex> lk(gm_);
  auto node = std::make_unique<SimNode>();
  node->name = name;
  node->cores = cores;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

ThreadHandle SimEnv::StartThread(int node_id, const std::string& name,
                                 std::function<void()> fn) {
  auto nt = std::make_unique<SimThread>();
  SimThread* t = nt.get();
  t->name = name;
  t->node = node_id;
  t->fn = std::move(fn);
  t->state = State::kBlocked;  // Until the baton first reaches it.
  uint64_t creator_lvt = 0;
  if (tls_current != nullptr) creator_lvt = tls_current->lvt;
  {
    std::unique_lock<std::mutex> lk(gm_);
    t->id = next_thread_id_++;
    DLSM_CHECK_MSG(static_cast<int>(nodes_.size()) > node_id,
                   "unknown node id");
    threads_.push_back(std::move(nt));
    live_threads_++;
    MakeReadyLocked(t, creator_lvt);
  }
  t->os_thread = std::thread([this, t] { ThreadBody(t); });
  return ThreadHandle{t->id};
}

void SimEnv::Join(ThreadHandle h) {
  SimThread* self = Current();
  std::unique_lock<std::mutex> lk(gm_);
  ChargeCpuLocked(self);
  SimThread* target = nullptr;
  for (auto& t : threads_) {
    if (t->id == h.id) {
      target = t.get();
      break;
    }
  }
  DLSM_CHECK_MSG(target != nullptr, "joining unknown thread");
  if (target->state == State::kFinished) {
    self->lvt = std::max(self->lvt, target->lvt);
    return;
  }
  target->joiners.push_back(self);
  SetStateLocked(self, State::kBlocked);
  SwitchOutLocked(self, lk);
}

uint64_t SimEnv::CurrentThreadId() {
  SimThread* self = tls_current;
  return self != nullptr ? self->id : 0;
}

int SimEnv::CurrentNodeId() {
  SimThread* self = tls_current;
  return self != nullptr ? self->node : 0;
}

std::string SimEnv::CurrentThreadName() {
  SimThread* self = tls_current;
  return self != nullptr ? self->name : std::string();
}

std::string SimEnv::NodeName(int node_id) {
  std::unique_lock<std::mutex> lk(gm_);
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return "default";
  }
  return nodes_[node_id]->name;
}

MutexImpl* SimEnv::NewMutex() { return new SimMutexImpl(this); }

CondVarImpl* SimEnv::NewCondVar(MutexImpl* mu) {
  return new SimCondVarImpl(this, static_cast<SimMutexImpl*>(mu));
}

BarrierImpl* SimEnv::NewBarrier(int parties) {
  return new SimBarrierImpl(this, parties);
}

uint64_t SimEnv::MaxVirtualNanos() {
  std::unique_lock<std::mutex> lk(gm_);
  uint64_t m = max_lvt_seen_;
  for (auto& t : threads_) m = std::max(m, t->lvt);
  return m;
}

}  // namespace dlsm
