// SimEnv: a virtual-time, discrete-event execution environment.
//
// The paper's evaluation ran on a testbed we cannot assume: a 24-core
// compute server and a large-memory server joined by a 100 Gb/s RDMA NIC,
// plus 16-node CloudLab clusters. SimEnv reproduces those experiments on a
// single-core machine by decoupling *simulated* time from wall time:
//
//  * Every simulated thread is a real OS thread, but exactly one runs at a
//    time (baton passing). Each carries a "local virtual time" (LVT).
//  * CPU cost is *measured*: at every scheduling point the thread's
//    CLOCK_THREAD_CPUTIME_ID delta is added to its LVT, scaled by the
//    processor-sharing factor of its node (active_threads / cores when the
//    node is oversubscribed). Real skiplist inserts, memcmp, memcpy and
//    bloom probes therefore cost what they really cost.
//  * Synchronization transfers causality: acquiring a mutex or receiving a
//    signal advances the receiver's LVT to at least the sender's LVT; the
//    scheduler always resumes the thread with the smallest LVT, so lock
//    queueing and producer/consumer waits play out in virtual time.
//  * Network delays (the RDMA fabric model) are applied with
//    Env::AdvanceTo(completion_time): the thread is parked, consuming no
//    simulated CPU, until virtual time reaches the completion timestamp.
//
// Throughput numbers are computed from virtual elapsed time across
// Barrier-synchronized regions, so a 16-thread sweep or a 16-node cluster
// behaves as it would on the real testbed even though the host serializes
// all execution.
//
// Approximation note: between scheduling points a thread's LVT is stale, so
// interleavings are accurate only at the granularity of scheduling points
// (mutex ops, condvar ops, network ops, MaybeYield calls). Hot loops call
// Env::MaybeYield() every few dozen iterations to bound the skew.

#ifndef DLSM_SIM_SIM_ENV_H_
#define DLSM_SIM_SIM_ENV_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/env.h"

namespace dlsm {

class SimMutexImpl;
class SimCondVarImpl;
class SimBarrierImpl;

/// Discrete-event virtual-time environment. Create one per simulated
/// experiment, register nodes, then call Run() with the experiment body.
class SimEnv : public Env {
 public:
  struct Options {
    Options() {}
    /// Multiplier from measured host CPU nanoseconds to virtual
    /// nanoseconds, before processor sharing. Calibrates the host core to
    /// the modeled testbed core.
    double cpu_scale = 1.0;
  };

  SimEnv() : SimEnv(Options()) {}
  explicit SimEnv(Options options);
  ~SimEnv() override;

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  /// Runs root() as the first simulated thread, attributed to node_id.
  /// Returns once every simulated thread has finished. May be called once.
  void Run(int node_id, std::function<void()> root);

  // Env interface -----------------------------------------------------------
  bool is_simulated() const override { return true; }
  uint64_t NowNanos() override;
  void SleepNanos(uint64_t ns) override;
  void AdvanceTo(uint64_t t_ns) override;
  void MaybeYield() override;
  void YieldToOthers() override;
  uint64_t UncountedBegin() override;
  void UncountedEnd(uint64_t token) override;
  int RegisterNode(const std::string& name, int cores) override;
  ThreadHandle StartThread(int node_id, const std::string& name,
                           std::function<void()> fn) override;
  void Join(ThreadHandle h) override;
  uint64_t CurrentThreadId() override;
  int CurrentNodeId() override;
  std::string CurrentThreadName() override;
  std::string NodeName(int node_id) override;
  MutexImpl* NewMutex() override;
  CondVarImpl* NewCondVar(MutexImpl* mu) override;
  BarrierImpl* NewBarrier(int parties) override;

  /// Largest LVT observed across all threads; the "end time" of a finished
  /// simulation.
  uint64_t MaxVirtualNanos();

  // Internal scheduler types, public so the sim synchronization primitives
  // and the thread-local current-thread pointer can reach them. Not part of
  // the supported API.
  enum class State { kReady, kRunning, kTimed, kBlocked, kFinished };

  struct SimThread {
    uint64_t id = 0;
    std::string name;
    int node = 0;
    State state = State::kReady;
    uint64_t lvt = 0;
    uint64_t wake_time = UINT64_MAX;  // Valid when state == kTimed.
    bool timed_out = false;           // Set when woken by deadline expiry.
    std::condition_variable cv;
    bool go = false;
    uint64_t cpu_start = 0;      // Thread-CPU ns at slice start.
    double factor_cache = 1.0;   // Processor-sharing factor at slice start.
    std::function<void()> fn;
    std::thread os_thread;
    std::vector<SimThread*> joiners;
  };

  struct SimNode {
    std::string name;
    int cores = 0;   // 0 = unlimited.
    int active = 0;  // Threads in kReady or kRunning.
  };

  static uint64_t ThreadCpuNanos();
  SimThread* Current();

  // All of the below require gm_ to be held.
  double FactorLocked(int node) const;
  void SetStateLocked(SimThread* t, State s);
  void ChargeCpuLocked(SimThread* self);
  void StartSliceLocked(SimThread* t);
  SimThread* PickNextLocked();
  /// Makes t runnable with causality from_lvt; caller sets any
  /// mutex-handoff state first.
  void MakeReadyLocked(SimThread* t, uint64_t from_lvt);
  /// Parks self (already moved to a non-running state) and resumes the best
  /// next thread. Returns when self is scheduled again.
  void SwitchOutLocked(SimThread* self, std::unique_lock<std::mutex>& lk);
  /// Hands the baton to the best next thread without parking self (used
  /// when self finishes).
  void PassBatonLocked(SimThread* self);
  void ResumeLocked(SimThread* t);
  void FinishThreadLocked(SimThread* self, std::unique_lock<std::mutex>& lk);
  [[noreturn]] void DeadlockAbortLocked();

  void ThreadBody(SimThread* t);

  Options options_;
  std::mutex gm_;
  std::condition_variable all_done_cv_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  uint64_t next_thread_id_ = 1;
  int live_threads_ = 0;
  bool ran_ = false;
  uint64_t max_lvt_seen_ = 0;
};

}  // namespace dlsm

#endif  // DLSM_SIM_SIM_ENV_H_
