#include "src/sim/thread_pool.h"

namespace dlsm {

ThreadPool::ThreadPool(Env* env, int node_id, int num_threads,
                       const std::string& name)
    : env_(env), mu_(env), work_cv_(env, &mu_), idle_cv_(env, &mu_) {
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    workers_.push_back(env_->StartThread(
        node_id, name + "-" + std::to_string(i), [this] { WorkerLoop(); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock l(&mu_);
    shutdown_ = true;
    work_cv_.SignalAll();
  }
  for (ThreadHandle h : workers_) {
    env_->Join(h);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  MutexLock l(&mu_);
  queue_.push_back(std::move(task));
  work_cv_.Signal();
}

void ThreadPool::WaitIdle() {
  MutexLock l(&mu_);
  while (!queue_.empty() || busy_ > 0) {
    idle_cv_.Wait();
  }
}

void ThreadPool::WorkerLoop() {
  MutexLock l(&mu_);
  for (;;) {
    while (queue_.empty() && !shutdown_) {
      work_cv_.Wait();
    }
    if (queue_.empty() && shutdown_) {
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_++;
    mu_.Unlock();
    task();
    mu_.Lock();
    busy_--;
    if (queue_.empty() && busy_ == 0) {
      idle_cv_.SignalAll();
    }
  }
}

}  // namespace dlsm
