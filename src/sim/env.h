// Execution environment abstraction.
//
// Engine code never uses std::thread / std::mutex / wall clocks directly;
// it goes through an Env. Two implementations exist:
//
//  * StdEnv  — real OS threads and the monotonic clock. Used by unit tests
//              that exercise true hardware concurrency.
//  * SimEnv  — a discrete-event, virtual-time scheduler that emulates the
//              paper's testbed (a 24-core compute node, a weak-CPU memory
//              node, 100 Gb/s RDMA link) on any machine, including a
//              single-core one. See sim_env.h.
//
// The same engine binary runs under either environment, which is how the
// benchmark figures are regenerated on hardware the paper's authors did not
// have to assume.

#ifndef DLSM_SIM_ENV_H_
#define DLSM_SIM_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace dlsm {

/// Opaque handle to a thread started through an Env.
struct ThreadHandle {
  uint64_t id = 0;
};

/// Internal mutex interface; use the Mutex wrapper below.
class MutexImpl {
 public:
  virtual ~MutexImpl() = default;
  virtual void Lock() = 0;
  virtual void Unlock() = 0;
};

/// Internal condition-variable interface; use the CondVar wrapper below.
class CondVarImpl {
 public:
  virtual ~CondVarImpl() = default;
  /// Atomically releases the bound mutex and waits; reacquires on return.
  virtual void Wait() = 0;
  /// As Wait() but returns true if the deadline elapsed before a signal.
  virtual bool TimedWait(uint64_t timeout_ns) = 0;
  virtual void Signal() = 0;
  virtual void SignalAll() = 0;
};

/// Internal barrier interface; use the Barrier wrapper below.
class BarrierImpl {
 public:
  virtual ~BarrierImpl() = default;
  /// Blocks until all parties arrive. Under SimEnv, all parties leave with
  /// their virtual clocks synchronized to the latest arriver.
  virtual void Arrive() = 0;
};

/// The environment seam: time, threads and synchronization.
class Env {
 public:
  virtual ~Env() = default;

  /// True for SimEnv (virtual time), false for StdEnv (wall time).
  virtual bool is_simulated() const = 0;

  /// Current time in nanoseconds, as observed by the calling thread.
  /// Under SimEnv this is the thread's local virtual time.
  virtual uint64_t NowNanos() = 0;

  /// Lets the specified duration pass without consuming CPU.
  virtual void SleepNanos(uint64_t ns) = 0;

  /// Waits (without consuming CPU) until NowNanos() >= t_ns. Used to wait
  /// for modeled network completions. No-op if t_ns is already in the past.
  virtual void AdvanceTo(uint64_t t_ns) = 0;

  /// Scheduling point for long CPU-bound loops. Cheap; call every few dozen
  /// operations from benchmark and compaction inner loops.
  virtual void MaybeYield() = 0;

  /// Polling hint: lets every other thread that is ready at an earlier time
  /// run before the caller continues. Under StdEnv this is sched_yield().
  virtual void YieldToOthers() = 0;

  /// Brackets a region whose host CPU cost must NOT be charged to virtual
  /// time. The fabric uses this around payload copies: a real RNIC moves
  /// bytes by DMA, so the posting thread pays only the (modeled) wire time,
  /// not the host memcpy. No-ops under StdEnv.
  virtual uint64_t UncountedBegin() { return 0; }
  virtual void UncountedEnd(uint64_t token) { (void)token; }

  /// Declares a machine with the given CPU core budget. Threads attributed
  /// to the node share its cores (processor sharing under SimEnv). Returns
  /// the node id. Node 0 always exists ("default", effectively unlimited).
  virtual int RegisterNode(const std::string& name, int cores) = 0;

  /// Starts a thread on the given node. The thread must either be Join()ed
  /// or have finished before the Env is destroyed.
  virtual ThreadHandle StartThread(int node_id, const std::string& name,
                                   std::function<void()> fn) = 0;

  /// Blocks until the thread identified by h has finished.
  virtual void Join(ThreadHandle h) = 0;

  // Identity of the calling thread, for observability (trace pid/tid
  // attribution). Defaults cover environments that do not track identity;
  // threads not started through the Env report id 0 on node 0.

  /// Stable id of the calling thread: creation-order sim thread id under
  /// SimEnv, StartThread registration id under StdEnv, 0 for foreign
  /// threads (e.g. the host main thread).
  virtual uint64_t CurrentThreadId() { return 0; }

  /// Node the calling thread was started on (0 = default node).
  virtual int CurrentNodeId() { return 0; }

  /// The name passed to StartThread; empty for foreign threads.
  virtual std::string CurrentThreadName() { return std::string(); }

  /// The name passed to RegisterNode ("default" for node 0 and for ids the
  /// environment does not know).
  virtual std::string NodeName(int node_id) {
    (void)node_id;
    return "default";
  }

  // Synchronization factories; use the wrappers below.
  virtual MutexImpl* NewMutex() = 0;
  virtual CondVarImpl* NewCondVar(MutexImpl* mu) = 0;
  virtual BarrierImpl* NewBarrier(int parties) = 0;

  /// Returns the process-wide real-time environment.
  static Env* Std();
};

/// Env-aware mutex.
class Mutex {
 public:
  explicit Mutex(Env* env) : impl_(env->NewMutex()) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() { impl_->Lock(); }
  void Unlock() { impl_->Unlock(); }
  MutexImpl* impl() { return impl_.get(); }

 private:
  std::unique_ptr<MutexImpl> impl_;
};

/// Env-aware condition variable bound to a Mutex.
class CondVar {
 public:
  CondVar(Env* env, Mutex* mu) : impl_(env->NewCondVar(mu->impl())) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Requires the bound mutex to be held.
  void Wait() { impl_->Wait(); }
  /// Requires the bound mutex to be held. Returns true on timeout.
  bool TimedWait(uint64_t timeout_ns) { return impl_->TimedWait(timeout_ns); }
  void Signal() { impl_->Signal(); }
  void SignalAll() { impl_->SignalAll(); }

 private:
  std::unique_ptr<CondVarImpl> impl_;
};

/// Env-aware barrier; under SimEnv it also synchronizes virtual clocks.
class Barrier {
 public:
  Barrier(Env* env, int parties) : impl_(env->NewBarrier(parties)) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void Arrive() { impl_->Arrive(); }

 private:
  std::unique_ptr<BarrierImpl> impl_;
};

/// RAII lock guard for Mutex.
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace dlsm

#endif  // DLSM_SIM_ENV_H_
